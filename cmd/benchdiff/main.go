// Command benchdiff compares two bench result JSON files (as written by
// `xtalksta -json` / `make bench-json`) and fails when any mode's delay
// drifts beyond the tolerance. CI runs it against a checked-in baseline
// so behavioral regressions in the analyses are caught at the gate, not
// after merge.
//
// Usage:
//
//	benchdiff -base ci/bench_baseline.json -new BENCH.json -tol 0.5
//	benchdiff -metrics -base base_metrics.json -new new_metrics.json
//
// Runtime and arc-evaluation counts are reported but never gated: they
// vary with hardware and scheduling. Delays are pure functions of the
// design and must not move. Peak memory (max_rss_bytes) gates hard at
// -mem-tol percent growth — the data layout determines it, so a
// regression there is a code change, not noise; compile_ms is reported
// warn-only. When both files record the circuit size (env cells/scale)
// a mismatch refuses the comparison: drift across scales is
// meaningless.
//
// The optional "latency" (analysis percentiles from `xtalksta -json`)
// and "server" (daemon percentiles/throughput from `xtalkload -merge`)
// sections diff warn-only: rows moving beyond -lat-tol are marked WARN
// in the report but never fail the build — wall-clock numbers from a
// shared CI box are for explaining drift, not gating it.
//
// With -metrics the inputs are metrics-registry dumps (`xtalksta
// -metrics`, Registry.WriteJSON) instead: the report lists every
// counter, gauge and histogram sample-count whose value moved between
// the two dumps — a work-drift view (arc evaluations, cache hits,
// converged skips) that complements the delay gate. Informational
// only: it never fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

type benchEnv struct {
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Workers     int    `json:"workers"`
	Scheduler   string `json:"scheduler"`
	GitRevision string `json:"git_revision"`
	// Scale and Cells pin the circuit size (absent/zero in older
	// files). When both files record Cells, a mismatch refuses the
	// comparison outright — drift numbers across different circuit
	// sizes are meaningless.
	Scale float64 `json:"scale"`
	Cells int     `json:"cells"`
}

type benchFile struct {
	Circuit string `json:"circuit"`
	// Env is absent in files written before environment recording; the
	// header then flags the comparison as unattributed.
	Env *benchEnv `json:"env"`
	// CompileMs and MaxRSSBytes are the build wall time and peak
	// resident set (absent/zero in older files). Memory gates
	// hard at -mem-tol; compile time diffs warn-only (wall clock).
	CompileMs   float64 `json:"compile_ms"`
	MaxRSSBytes int64   `json:"max_rss_bytes"`
	Rows        []struct {
		Method      string  `json:"method"`
		DelayNs     float64 `json:"delay_ns"`
		RuntimeMs   float64 `json:"runtime_ms"`
		Passes      int     `json:"passes"`
		Evaluations int64   `json:"arc_evaluations"`
		Tier0Evals  int64   `json:"tier0_evals"`
		NewtonEvals int64   `json:"newton_evals"`
	} `json:"rows"`
	// Latency and Server are flat numeric sections (absent in older
	// files). They diff warn-only: wall-clock figures, never gated.
	Latency map[string]float64 `json:"latency"`
	Server  map[string]float64 `json:"server"`
}

// envString renders one file's recorded environment for the header.
func envString(f *benchFile) string {
	if f.Env == nil {
		return "(no environment recorded)"
	}
	e := f.Env
	s := fmt.Sprintf("%s gomaxprocs=%d workers=%d sched=%s rev=%s",
		e.GoVersion, e.GOMAXPROCS, e.Workers, e.Scheduler, e.GitRevision)
	if e.Cells > 0 {
		s += fmt.Sprintf(" cells=%d scale=%g", e.Cells, e.Scale)
	}
	return s
}

// checkSameCircuitSize refuses to compare bench files recorded at
// different circuit sizes. Only enforced when both files carry the
// size (older baselines predate the env cells/scale fields).
func checkSameCircuitSize(base, cand *benchFile) error {
	if base.Env == nil || cand.Env == nil || base.Env.Cells == 0 || cand.Env.Cells == 0 {
		return nil
	}
	if base.Env.Cells != cand.Env.Cells || base.Env.Scale != cand.Env.Scale {
		return fmt.Errorf("circuit size mismatch: base has %d cells (scale %g), candidate %d cells (scale %g) — refusing to compare across scales",
			base.Env.Cells, base.Env.Scale, cand.Env.Cells, cand.Env.Scale)
	}
	return nil
}

func load(path string) (*benchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Rows) == 0 {
		return nil, fmt.Errorf("%s: no result rows", path)
	}
	return &f, nil
}

// metricsDump mirrors obs.Dump (the Registry.WriteJSON shape) closely
// enough to diff; labeled series arrive pre-flattened as
// `name{key="value",...}` map keys.
type metricsDump struct {
	Counters   map[string]int64   `json:"counters"`
	Gauges     map[string]float64 `json:"gauges"`
	Histograms map[string]struct {
		Count int64   `json:"count"`
		Sum   float64 `json:"sum"`
	} `json:"histograms"`
}

func loadMetrics(path string) (*metricsDump, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d metricsDump
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

// diffMetrics prints every metric whose value moved between the dumps
// (plus appeared/disappeared series). Never fails: work counters vary
// legitimately with caches, scheduling and feature flags — the report
// is for explaining drift, not gating it.
func diffMetrics(basePath, newPath string) error {
	base, err := loadMetrics(basePath)
	if err != nil {
		return err
	}
	cand, err := loadMetrics(newPath)
	if err != nil {
		return err
	}
	fmt.Printf("metrics diff: %s -> %s\n", basePath, newPath)
	changed := 0
	changed += diffSection("counter", int64Rows(base.Counters), int64Rows(cand.Counters))
	changed += diffSection("gauge", floatRows(base.Gauges), floatRows(cand.Gauges))
	bh := make(map[string]float64, len(base.Histograms))
	for k, v := range base.Histograms {
		bh[k+" (samples)"] = float64(v.Count)
	}
	nh := make(map[string]float64, len(cand.Histograms))
	for k, v := range cand.Histograms {
		nh[k+" (samples)"] = float64(v.Count)
	}
	changed += diffSection("histogram", bh, nh)
	if changed == 0 {
		fmt.Println("ok: no metric moved")
	} else {
		fmt.Printf("%d metrics moved (informational; not gated)\n", changed)
	}
	return nil
}

func int64Rows(m map[string]int64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = float64(v)
	}
	return out
}

func floatRows(m map[string]float64) map[string]float64 { return m }

// diffSection prints one kind's moved/new/gone rows in sorted order and
// returns how many rows it printed.
func diffSection(kind string, base, cand map[string]float64) int {
	names := make(map[string]bool, len(base)+len(cand))
	for k := range base {
		names[k] = true
	}
	for k := range cand {
		names[k] = true
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	n := 0
	for _, name := range sorted {
		bv, inBase := base[name]
		nv, inCand := cand[name]
		switch {
		case !inBase:
			fmt.Printf("  %-9s %-60s %14s -> %14g  NEW\n", kind, name, "-", nv)
		case !inCand:
			fmt.Printf("  %-9s %-60s %14g -> %14s  GONE\n", kind, name, bv, "-")
		case bv != nv:
			fmt.Printf("  %-9s %-60s %14g -> %14g  (%+g)\n", kind, name, bv, nv, nv-bv)
		default:
			continue
		}
		n++
	}
	return n
}

// diffWarnOnly compares one flat numeric section between the files and
// prints rows whose relative drift exceeds tol percent with a WARN
// mark. It returns the number of warned rows but never fails the run:
// latency and throughput on shared hardware are informational.
func diffWarnOnly(section string, base, cand map[string]float64, tol float64) int {
	switch {
	case len(base) == 0 && len(cand) == 0:
		return 0
	case len(base) == 0:
		fmt.Printf("\n%s: no baseline section; candidate recorded (informational)\n", section)
		return 0
	case len(cand) == 0:
		fmt.Printf("\n%s: section missing from candidate (informational)\n", section)
		return 0
	}
	names := make([]string, 0, len(base))
	for k := range base {
		if _, ok := cand[k]; ok {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	fmt.Printf("\n%s (warn-only, tol %.0f%%):\n", section, tol)
	fmt.Printf("  %-24s %12s %12s %9s\n", "key", "base", "new", "drift %")
	warned := 0
	for _, k := range names {
		bv, nv := base[k], cand[k]
		drift := 0.0
		if bv != 0 {
			drift = 100 * math.Abs(nv-bv) / math.Abs(bv)
		} else if nv != 0 {
			drift = math.Inf(1)
		}
		mark := ""
		if drift > tol {
			mark = "  WARN"
			warned++
		}
		fmt.Printf("  %-24s %12.4g %12.4g %9.1f%s\n", k, bv, nv, drift, mark)
	}
	if warned > 0 {
		fmt.Printf("  %d %s rows beyond %.0f%% (informational; not gated)\n", warned, section, tol)
	}
	return warned
}

func main() {
	basePath := flag.String("base", "", "baseline bench JSON")
	newPath := flag.String("new", "", "candidate bench JSON")
	tol := flag.Float64("tol", 0.5, "allowed per-mode delay drift in percent")
	memTol := flag.Float64("mem-tol", 25, "allowed max_rss_bytes growth in percent (hard-fails like delay drift; shrinking never fails)")
	latTol := flag.Float64("lat-tol", 25, "warn threshold in percent for the latency/server sections (never fails)")
	metricsMode := flag.Bool("metrics", false, "diff two metrics-registry dumps (xtalksta -metrics) instead of bench results; informational, never fails")
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -base and -new are required")
		os.Exit(2)
	}
	if *metricsMode {
		if err := diffMetrics(*basePath, *newPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		return
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cand, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	got := make(map[string]float64, len(cand.Rows))
	for _, r := range cand.Rows {
		got[r.Method] = r.DelayNs
	}

	fmt.Printf("base: %s  %s\n", *basePath, envString(base))
	fmt.Printf("new:  %s  %s\n", *newPath, envString(cand))
	if err := checkSameCircuitSize(base, cand); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	fail := false
	fmt.Printf("%-22s %12s %12s %9s\n", "mode", "base ns", "new ns", "drift %")
	for _, r := range base.Rows {
		nd, ok := got[r.Method]
		if !ok {
			fmt.Printf("%-22s %12.4f %12s %9s  MISSING\n", r.Method, r.DelayNs, "-", "-")
			fail = true
			continue
		}
		drift := 0.0
		if r.DelayNs != 0 {
			drift = 100 * math.Abs(nd-r.DelayNs) / math.Abs(r.DelayNs)
		} else if nd != 0 {
			drift = math.Inf(1)
		}
		mark := ""
		if drift > *tol {
			mark = "  DRIFT"
			fail = true
		}
		fmt.Printf("%-22s %12.4f %12.4f %9.3f%s\n", r.Method, r.DelayNs, nd, drift, mark)
	}
	// Per-mode evaluation counts diff warn-only, like the wall-clock
	// sections: tier-0 dispatch, cache reuse and feature flags move them
	// legitimately — the report explains work drift, the delay rows
	// above gate correctness.
	baseEvals := make(map[string]float64, len(base.Rows))
	for _, r := range base.Rows {
		baseEvals[r.Method] = float64(r.Evaluations)
	}
	candEvals := make(map[string]float64, len(cand.Rows))
	for _, r := range cand.Rows {
		candEvals[r.Method] = float64(r.Evaluations)
	}
	diffWarnOnly("arc_evaluations", baseEvals, candEvals, *latTol)
	diffWarnOnly("latency", base.Latency, cand.Latency, *latTol)
	diffWarnOnly("server", base.Server, cand.Server, *latTol)

	// Peak-memory gate: growth beyond -mem-tol fails like delay drift
	// (memory is a deterministic function of the data layout on a given
	// platform, modulo GC timing the tolerance absorbs). Shrinking is
	// always fine. compile_ms diffs warn-only above: wall clock on
	// shared hardware explains drift but never gates.
	if base.MaxRSSBytes > 0 && cand.MaxRSSBytes > 0 {
		growth := 100 * (float64(cand.MaxRSSBytes) - float64(base.MaxRSSBytes)) / float64(base.MaxRSSBytes)
		mark := ""
		if growth > *memTol {
			mark = "  REGRESSION"
			fail = true
		}
		fmt.Printf("\nmax_rss: %.1f -> %.1f MiB (%+.1f%%, tol %.0f%%)%s\n",
			float64(base.MaxRSSBytes)/(1<<20), float64(cand.MaxRSSBytes)/(1<<20), growth, *memTol, mark)
	} else if base.MaxRSSBytes == 0 && cand.MaxRSSBytes > 0 {
		fmt.Printf("\nmax_rss: no baseline; candidate %d bytes (recorded, not gated)\n", cand.MaxRSSBytes)
	}
	if base.CompileMs > 0 && cand.CompileMs > 0 {
		diffWarnOnly("compile", map[string]float64{"compile_ms": base.CompileMs},
			map[string]float64{"compile_ms": cand.CompileMs}, *latTol)
	}
	if fail {
		fmt.Fprintf(os.Stderr, "benchdiff: delays drifted beyond %.2f%% of %s\n", *tol, *basePath)
		os.Exit(1)
	}
	fmt.Printf("ok: all modes within %.2f%% of baseline\n", *tol)
}
