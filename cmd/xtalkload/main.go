// Command xtalkload is the load generator for the xtalkstad timing
// daemon: concurrent workers drive analyze queries (mixed modes and
// corners) while a writer streams ECO edit batches through the same
// design, and the client-side latency distribution is measured exactly
// — every request timed, percentiles from the sorted samples, not
// bucket interpolation.
//
// Usage:
//
//	xtalkload -cells 300 -duration 3s -concurrency 8         # self-hosted
//	xtalkload -addr 127.0.0.1:8080 -design main -duration 5s # against a daemon
//	xtalkload -cells 300 -merge BENCH_pr8.json               # add the "server"
//	                                                         # section to a bench JSON
//
// Without -addr it spins up an in-process server.Server on a loopback
// port and hammers it over real HTTP, so the numbers include the full
// serving stack (mux, admission, coalescing, JSON).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xtalksta"
	"xtalksta/internal/circuitgen"
	"xtalksta/internal/obs"
	"xtalksta/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xtalkload:", err)
		os.Exit(1)
	}
}

// serverBench is the "server" section merged into bench JSONs: the
// client-observed latency percentiles and throughput of the daemon
// under concurrent read/edit traffic, plus the server-side counters
// that explain them. benchdiff treats this section as warn-only —
// latency on a shared CI box is informational, unlike delays.
type serverBench struct {
	DurationS    float64 `json:"duration_s"`
	Concurrency  int     `json:"concurrency"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	Shed         int64   `json:"shed"`
	EditBatches  int64   `json:"edit_batches"`
	CoalesceHits int64   `json:"coalesce_hits"`
	CacheHits    int64   `json:"result_cache_hits"`
	Throughput   float64 `json:"throughput_rps"`
	AnalyzeP50Ms float64 `json:"analyze_p50_ms"`
	AnalyzeP90Ms float64 `json:"analyze_p90_ms"`
	AnalyzeP99Ms float64 `json:"analyze_p99_ms"`
}

func run() error {
	var (
		addr   = flag.String("addr", "", "daemon address to load (empty = self-host an in-process server)")
		design = flag.String("design", "main", "design id to query")

		preset = flag.String("preset", "", "self-hosted design: paper preset")
		scale  = flag.Float64("scale", 0.02, "self-hosted design: preset scale")
		cells  = flag.Int("cells", 300, "self-hosted design: synthetic cell count (ignored with -preset)")
		dffs   = flag.Int("dffs", 0, "self-hosted design: flip-flop count (default cells/10)")
		depth  = flag.Int("depth", 8, "self-hosted design: logic depth")
		seed   = flag.Int64("seed", 1, "self-hosted design: generator seed")

		maxInFlight = flag.Int("max-inflight", 0, "self-hosted server: concurrent request slots")
		maxQueue    = flag.Int("max-queue", 0, "self-hosted server: queue bound")
		workers     = flag.Int("workers", 0, "self-hosted server: per-analysis worker goroutines")

		duration     = flag.Duration("duration", 3*time.Second, "load duration")
		concurrency  = flag.Int("concurrency", 8, "concurrent reader goroutines")
		editInterval = flag.Duration("edit-interval", 250*time.Millisecond, "writer edit-batch cadence (0 = no edits)")
		mix          = flag.String("mix", "iterative,best,worst", "comma-separated analysis modes cycled by readers")
		timeoutMs    = flag.Int("timeout-ms", 3000, "per-request timeout_ms sent to the server")

		jsonPath  = flag.String("json", "", "write the measurement as JSON to this file (- or empty = stdout)")
		mergePath = flag.String("merge", "", "merge the measurement as the \"server\" section of this bench JSON file")
	)
	flag.Parse()

	base := *addr
	if base == "" {
		srv, err := selfHost(*preset, *scale, *cells, *dffs, *depth, *seed,
			*design, *maxInFlight, *maxQueue, *workers)
		if err != nil {
			return err
		}
		defer srv.Close()
		base = srv.Addr()
		fmt.Fprintf(os.Stderr, "xtalkload: self-hosted server on http://%s\n", base)
	}
	base = "http://" + strings.TrimPrefix(base, "http://")

	modes := strings.Split(*mix, ",")
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: *concurrency * 2, MaxIdleConnsPerHost: *concurrency * 2,
	}}

	// Warm the design (first analysis characterizes the cell library)
	// and fetch coupled pairs for the writer's edit batches.
	if code, body, err := post(client, base+"/v1/designs/"+*design+"/analyze",
		map[string]any{"mode": modes[0], "timeout_ms": 60000}); err != nil || code != 200 {
		return fmt.Errorf("warmup analyze: code %d err %v body %s", code, err, body)
	}
	pairs, err := fetchPairs(client, base, *design)
	if err != nil {
		return err
	}

	before, err := scrapeCounters(client, base)
	if err != nil {
		return err
	}

	// The measured window: concurrent readers cycling the mode mix, one
	// writer streaming edit batches on its own cadence.
	deadline := time.Now().Add(*duration)
	var (
		wg       sync.WaitGroup
		requests atomic.Int64
		errors   atomic.Int64
		shedAck  atomic.Int64
		samples  = make([][]float64, *concurrency)
	)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []float64
			for i := 0; time.Now().Before(deadline); i++ {
				body := map[string]any{
					"mode":       modes[(w+i)%len(modes)],
					"timeout_ms": *timeoutMs,
				}
				t0 := time.Now()
				code, _, err := post(client, base+"/v1/designs/"+*design+"/analyze", body)
				lat := time.Since(t0)
				requests.Add(1)
				switch {
				case err != nil || code >= 500 && code != 503:
					errors.Add(1)
				case code == 429 || code == 503:
					shedAck.Add(1)
				case code == 200:
					mine = append(mine, lat.Seconds())
				default:
					errors.Add(1)
				}
			}
			samples[w] = mine
		}(w)
	}
	if *editInterval > 0 && len(pairs) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(*editInterval)
			defer tick.Stop()
			for i := 0; time.Now().Before(deadline); i++ {
				select {
				case <-tick.C:
				case <-time.After(time.Until(deadline)):
					return
				}
				p := pairs[i%len(pairs)]
				factor := 1.02
				if i%2 == 1 {
					factor = 1 / 1.02 // keep the design bounded over long runs
				}
				code, body, err := post(client, base+"/v1/designs/"+*design+"/edit", map[string]any{
					"edits":      []any{xtalksta.ScaleCoupling(p.a, p.b, factor)},
					"timeout_ms": *timeoutMs,
				})
				requests.Add(1)
				if err != nil || (code != 200 && code != 429 && code != 503) {
					errors.Add(1)
					fmt.Fprintf(os.Stderr, "xtalkload: edit failed: code %d err %v body %s\n", code, err, body)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := *duration

	after, err := scrapeCounters(client, base)
	if err != nil {
		return err
	}

	var all []float64
	for _, s := range samples {
		all = append(all, s...)
	}
	sort.Float64s(all)
	bench := serverBench{
		DurationS:    elapsed.Seconds(),
		Concurrency:  *concurrency,
		Requests:     requests.Load(),
		Errors:       errors.Load(),
		Shed:         counterDelta(before, after, obs.MServerShed),
		EditBatches:  counterDelta(before, after, obs.MServerEditBatches),
		CoalesceHits: counterDelta(before, after, obs.MServerCoalesceHits),
		CacheHits:    counterDelta(before, after, obs.MServerResultCacheHits),
		Throughput:   float64(len(all)) / elapsed.Seconds(),
		AnalyzeP50Ms: percentile(all, 0.50) * 1e3,
		AnalyzeP90Ms: percentile(all, 0.90) * 1e3,
		AnalyzeP99Ms: percentile(all, 0.99) * 1e3,
	}
	if bench.Errors > 0 {
		return fmt.Errorf("%d requests errored (of %d)", bench.Errors, bench.Requests)
	}
	if len(all) == 0 {
		return fmt.Errorf("no successful analyze requests in the window")
	}

	fmt.Fprintf(os.Stderr,
		"xtalkload: %d requests in %v (%.0f ok/s), latency p50 %.2f ms p90 %.2f ms p99 %.2f ms\n",
		bench.Requests, elapsed, bench.Throughput,
		bench.AnalyzeP50Ms, bench.AnalyzeP90Ms, bench.AnalyzeP99Ms)
	fmt.Fprintf(os.Stderr,
		"xtalkload: %d shed, %d coalesce hits, %d cache hits, %d edit batches\n",
		bench.Shed, bench.CoalesceHits, bench.CacheHits, bench.EditBatches)

	if *mergePath != "" {
		if err := mergeBench(*mergePath, bench); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "xtalkload: merged \"server\" section into %s\n", *mergePath)
	}
	if *mergePath == "" || *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "" && *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(bench); err != nil {
			return err
		}
	}
	return nil
}

// selfHost builds a design and serves it from an in-process server on a
// loopback port.
func selfHost(preset string, scale float64, cells, dffs, depth int, seed int64, id string, maxInFlight, maxQueue, workers int) (*server.Server, error) {
	reg := obs.NewRegistry()
	bopts := xtalksta.Defaults()
	bopts.Layout.Metrics = reg
	bopts.Calc.Metrics = reg
	var (
		d     *xtalksta.Design
		title string
		err   error
	)
	if preset != "" {
		d, err = xtalksta.GeneratePreset(xtalksta.Preset(strings.ToLower(preset)), scale, bopts)
		title = fmt.Sprintf("%s (scale %.2f)", preset, scale)
	} else {
		if dffs <= 0 {
			dffs = cells / 10
		}
		d, err = xtalksta.Generate(circuitgen.Params{
			Seed: seed, Cells: cells, DFFs: dffs, Depth: depth, ClockFanout: 8,
		}, bopts)
		title = fmt.Sprintf("synthetic %d cells (seed %d)", cells, seed)
	}
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{
		Registry: reg, MaxInFlight: maxInFlight, MaxQueue: maxQueue, Workers: workers,
	})
	if err := srv.Register(id, title, d); err != nil {
		return nil, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	return srv, nil
}

func post(client *http.Client, url string, body any) (int, []byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp.StatusCode, out, err
}

type pair struct{ a, b string }

// fetchPairs asks the server for coupled net pairs — the writer's edit
// targets — over the same API any remote client would use.
func fetchPairs(client *http.Client, base, design string) ([]pair, error) {
	resp, err := client.Get(base + "/v1/designs/" + design + "?pairs=16")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("GET design %s: status %d", design, resp.StatusCode)
	}
	var body struct {
		CoupledPairs []struct {
			A string `json:"a"`
			B string `json:"b"`
		} `json:"coupled_pairs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	out := make([]pair, 0, len(body.CoupledPairs))
	for _, p := range body.CoupledPairs {
		out = append(out, pair{p.A, p.B})
	}
	return out, nil
}

// scrapeCounters reads the flat counter map of /debug/obs/snapshot.
func scrapeCounters(client *http.Client, base string) (map[string]int64, error) {
	resp, err := client.Get(base + "/debug/obs/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var dump struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return nil, err
	}
	return dump.Counters, nil
}

// counterDelta sums the before→after movement of every series of one
// counter family (labeled series flatten to `name{...}` keys).
func counterDelta(before, after map[string]int64, family string) int64 {
	var d int64
	for k, v := range after {
		if k == family || strings.HasPrefix(k, family+"{") {
			d += v - before[k]
		}
	}
	return d
}

// percentile is the nearest-rank percentile of a sorted sample set —
// exact, not bucket-interpolated.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// mergeBench rewrites path with bench as its "server" section,
// preserving every other top-level key.
func mergeBench(path string, bench serverBench) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading bench JSON to merge into: %w", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	b, err := json.Marshal(bench)
	if err != nil {
		return err
	}
	doc["server"] = b
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
