// Command xtalksta runs the crosstalk-aware static timing analyses on a
// circuit and prints the paper-style result table.
//
// Usage:
//
//	xtalksta -preset s35932 -scale 0.05 -golden
//	xtalksta -bench design.bench -mode iterative
//	xtalksta -cells 2000 -dffs 150 -depth 14 -seed 7
//
// With -mode, a single analysis runs and the critical path is printed;
// without it, all five analyses run and the table is rendered.
//
// Observability: -metrics dumps the engine's counter registry as JSON,
// -trace writes a Chrome trace_event profile (open in chrome://tracing
// or Perfetto), -cpuprofile/-memprofile write pprof profiles, -v prints
// per-pass progress to stderr, and -json writes the all-modes result
// summary as machine-readable JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"xtalksta"
	"xtalksta/internal/circuitgen"
	"xtalksta/internal/incremental"
	"xtalksta/internal/netlist"
	"xtalksta/internal/obs"
	"xtalksta/internal/obs/httpserve"
	"xtalksta/internal/report"
	"xtalksta/internal/vcd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xtalksta:", err)
		os.Exit(1)
	}
}

// progressObserver prints per-pass progress lines to stderr (-v). The
// engine guarantees the callbacks fire on the driver goroutine only, so
// no locking is needed.
type progressObserver struct{ start time.Time }

func (p *progressObserver) PassStarted(pass int, mode xtalksta.Mode) {
	fmt.Fprintf(os.Stderr, "[%8.3fs] pass %d (%s) started\n",
		time.Since(p.start).Seconds(), pass, mode)
}

func (p *progressObserver) PassFinished(st xtalksta.PassStat) {
	fmt.Fprintf(os.Stderr, "[%8.3fs] pass %d (%s) done in %v: longest %.3f ns, %d arcs, %d wires recalculated, %d skipped\n",
		time.Since(p.start).Seconds(), st.Pass, st.Mode, st.Wall.Round(time.Millisecond),
		st.LongestPath*1e9, st.ArcEvaluations, st.RecalculatedWires, st.EsperanceSkips)
}

func run() error {
	var (
		benchPath = flag.String("bench", "", "ISCAS89 .bench netlist to analyze")
		spefPath  = flag.String("spef", "", "parasitics file for -bench (skips place & route)")
		preset    = flag.String("preset", "", "paper benchmark preset: s35932, s38417 or s38584")
		scale     = flag.Float64("scale", 1.0, "preset size scale in (0,1]")
		cells     = flag.Int("cells", 0, "generate a synthetic circuit with this many cells")
		dffs      = flag.Int("dffs", 0, "flip-flop count for -cells")
		depth     = flag.Int("depth", 12, "logic depth for -cells")
		seed      = flag.Int64("seed", 1, "generator seed for -cells")
		mode      = flag.String("mode", "", "single analysis: best, doubled, worst, onestep, iterative")
		esperance = flag.Bool("esperance", false, "enable the Esperance speedup (iterative mode)")
		golden    = flag.Bool("golden", false, "validate the longest path with the golden simulator")
		markdown  = flag.Bool("markdown", false, "emit the table as markdown")
		clock     = flag.Float64("clock", 0, "clock period in ns: print a per-endpoint slack report")
		topk      = flag.Int("topk", 10, "endpoints/nets to list in reports")
		noiseFlag = flag.Bool("noise", false, "print the crosstalk glitch (functional noise) report")
		fix       = flag.Bool("fix", false, "run the gate-sizing optimizer against -clock (requires -mode and -clock)")
		goldenVCD = flag.String("goldenvcd", "", "with -golden: dump the aligned path waveforms to this VCD file")

		ecoPath   = flag.String("eco", "", "replay ECO edit batches from this JSON file incrementally (requires -mode)")
		ecoRandom = flag.Int("eco-random", 0, "replay this many random ECO edit batches (requires -mode)")
		ecoSeed   = flag.Int64("eco-seed", 1, "rng seed for -eco-random")
		ecoEdits  = flag.Int("eco-edits", 4, "edits per random batch for -eco-random")
		ecoVerify = flag.Bool("eco-verify", false, "cross-check every incremental result against a from-scratch run")

		lteTol      = flag.Float64("lte-tol", 0, "adaptive-timestep truncation-error tolerance in volts (0 = default 1e-3)")
		cacheShards = flag.Int("cache-shards", 0, "lock stripes of the characterization cache, rounded up to a power of two (0 = default 8)")
		fixedGrid   = flag.Bool("fixed-grid", false, "use the legacy fixed 700-step transient grid instead of the adaptive kernel")

		parallelModes = flag.Bool("parallel-modes", false, "table mode: run the five analyses concurrently over one compiled snapshot (delays identical; runtimes overlap and share a warm cache)")
		sweepBench    = flag.Bool("sweep-bench", false, "with -json in table mode: additionally time the five-mode sweep serial (cold cache per mode) vs concurrent (one shared cache) and record both wall-clocks")

		tier0       = flag.Bool("tier0", true, "tiered delay evaluation: analytic bounds skip provably non-critical exact evaluations (bit-identical results; ignored under -esperance/windows)")
		tier0Margin = flag.Float64("tier0-margin", 0.05, "relative criticality margin of the tier-0 gate; arcs within this fraction of the longest-path frontier always evaluate exactly")

		workers     = flag.Int("workers", 0, "worker goroutines per BFS sweep (0/1 = sequential)")
		sched       = flag.String("sched", "dataflow", "sweep scheduler: dataflow (wavefront) or levels (barrier reference)")
		metricsPath = flag.String("metrics", "", "write the metrics registry as JSON to this file")
		tracePath   = flag.String("trace", "", "write a Chrome trace_event profile to this file")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
		verbose     = flag.Bool("v", false, "print per-pass progress and a latency-percentile summary to stderr")
		jsonPath    = flag.String("json", "", "write the all-modes result summary as JSON to this file (table mode only)")

		serveObs  = flag.String("serve-obs", "", "serve the live introspection plane (/metrics, /debug/pprof/*, /debug/obs/*) on this address, e.g. :9090 or 127.0.0.1:0")
		eventsOut = flag.String("events", "", "append structured JSONL analysis/pass/ECO events to this file")
		attrFlag  = flag.Bool("attribution", false, "single-mode: print the per-arc timing attribution of the top -topk paths")
		attrJSON  = flag.String("attribution-json", "", "single-mode: write the timing attribution as JSON to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// Telemetry plumbing: one registry and one trace buffer shared by
	// layout, engine and golden simulation; flushed to disk on the way
	// out whatever happened in between. The registry also backs the
	// -serve-obs endpoints, the -v latency summary and the -json
	// percentile block, so any of those implies one.
	var reg *xtalksta.MetricsRegistry
	if *metricsPath != "" || *serveObs != "" || *verbose || *jsonPath != "" {
		reg = xtalksta.NewMetricsRegistry()
	}
	var chrome *xtalksta.ChromeTrace
	var tracer *xtalksta.Tracer
	if *tracePath != "" {
		chrome = &xtalksta.ChromeTrace{}
		tracer = xtalksta.NewTracer(chrome)
	}
	defer func() {
		if *verbose && reg != nil {
			printLatencySummary(os.Stderr, reg)
		}
		if reg != nil && *metricsPath != "" {
			if err := writeFileWith(*metricsPath, reg.WriteJSON); err != nil {
				fmt.Fprintln(os.Stderr, "xtalksta: writing metrics:", err)
			}
		}
		if chrome != nil {
			if err := writeFileWith(*tracePath, chrome.WriteJSON); err != nil {
				fmt.Fprintln(os.Stderr, "xtalksta: writing trace:", err)
			}
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "xtalksta: writing heap profile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "xtalksta: writing heap profile:", err)
			}
		}
	}()

	scheduler, err := parseSched(*sched)
	if err != nil {
		return err
	}

	// Structured event log (-events): one JSONL record per analysis,
	// refinement pass and ECO batch.
	var events *xtalksta.EventLog
	if *eventsOut != "" {
		f, err := os.OpenFile(*eventsOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		events = xtalksta.NewEventLog(f)
		events.AttachCounter(reg.Counter(obs.MEventsEmitted))
	}

	// Live introspection plane (-serve-obs): starts before the design
	// build so layout/characterization metrics are already scrapeable.
	var obsSrv *httpserve.Server
	if *serveObs != "" {
		obsSrv = httpserve.New(reg)
		if err := obsSrv.Start(*serveObs); err != nil {
			return err
		}
		defer obsSrv.Close()
		fmt.Fprintf(os.Stderr, "introspection plane listening on http://%s\n", obsSrv.Addr())

		// Clean exit on SIGINT/SIGTERM while serving: drain the plane
		// (in-flight scrapes finish, the listener closes, nothing leaks)
		// instead of dying mid-response.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigc)
		go func() {
			sig, ok := <-sigc
			if !ok {
				return
			}
			fmt.Fprintf(os.Stderr, "xtalksta: %v: draining introspection plane\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			obsSrv.Shutdown(ctx)
			os.Exit(130)
		}()
	}

	if (*attrFlag || *attrJSON != "") && *mode == "" {
		return fmt.Errorf("-attribution/-attribution-json require -mode (attribution is per-analysis)")
	}

	aopts := xtalksta.AnalysisOptions{
		Esperance:       *esperance,
		Workers:         *workers,
		Scheduler:       scheduler,
		Tier0:           *tier0,
		Tier0Margin:     *tier0Margin,
		Metrics:         reg,
		Trace:           tracer,
		Events:          events,
		Attribution:     *attrFlag || *attrJSON != "" || (obsSrv != nil && *mode != ""),
		AttributionTopK: *topk,
	}
	if *verbose {
		aopts.Observer = &progressObserver{start: time.Now()}
	}

	bopts := xtalksta.Defaults()
	bopts.Layout.Metrics = reg
	bopts.Layout.Trace = tracer
	bopts.Calc.Metrics = reg
	bopts.Calc.LTETol = *lteTol
	bopts.Calc.CacheShards = *cacheShards
	bopts.Calc.FixedGrid = *fixedGrid
	buildStart := time.Now()
	d, title, err := buildDesign(*benchPath, *spefPath, *preset, *scale, *cells, *dffs, *depth, *seed, bopts)
	if err != nil {
		return err
	}
	compileMs := float64(time.Since(buildStart)) / 1e6
	st, err := d.Stats()
	if err != nil {
		return err
	}
	if obsSrv != nil {
		obsSrv.SetSessions(func() any { return d.Sessions() })
	}
	fmt.Printf("circuit: %s — %d cells (%d DFFs), %d nets, depth %d\n\n",
		title, st.Cells, st.DFFs, st.Nets, st.LogicDepth)

	if *noiseFlag {
		rep, err := d.AnalyzeNoise()
		if err != nil {
			return err
		}
		if err := rep.Render(os.Stdout, *topk); err != nil {
			return err
		}
		fmt.Println()
	}

	if (*ecoPath != "" || *ecoRandom > 0) && *mode == "" {
		return fmt.Errorf("-eco/-eco-random require -mode (incremental replay is per-analysis)")
	}

	if *mode != "" {
		m, err := parseMode(*mode)
		if err != nil {
			return err
		}
		aopts.Mode = m
		if *ecoPath != "" || *ecoRandom > 0 {
			if *fix || *clock > 0 {
				return fmt.Errorf("-eco/-eco-random cannot be combined with -fix or -clock")
			}
			return runECO(d, aopts, *ecoPath, *ecoRandom, *ecoSeed, *ecoEdits, *ecoVerify)
		}
		if *fix {
			if *clock <= 0 {
				return fmt.Errorf("-fix requires -clock")
			}
			res, err := d.FixTiming(aopts, *clock*1e-9, xtalksta.SizingConfig{})
			if err != nil {
				return err
			}
			fmt.Printf("sizing: %.3f ns -> %.3f ns against %.3f ns target (met=%v, %d moves, %d iterations)\n",
				res.Before*1e9, res.After*1e9, *clock, res.Met, len(res.Moves), res.Iterations)
			for i, mv := range res.Moves {
				if i >= *topk {
					fmt.Printf("  ... %d more moves\n", len(res.Moves)-i)
					break
				}
				fmt.Printf("  upsize %-12s -> %.2fx\n", mv.Cell, mv.NewSize)
			}
			return nil
		}
		if *clock > 0 {
			rep, err := d.Report(aopts, *clock*1e-9)
			if err != nil {
				return err
			}
			return rep.Render(os.Stdout, *topk)
		}
		res, err := d.Analyze(aopts)
		if err != nil {
			return err
		}
		fmt.Printf("%s: longest path %.3f ns (endpoint %s %s, %d passes, %v, %d arc evals)\n",
			res.Mode, res.LongestPath*1e9, res.Endpoint.Net, res.Endpoint.Kind,
			res.Passes, res.Runtime.Round(1e6), res.ArcEvaluations)
		fmt.Println("\ncritical path:")
		for _, step := range res.Path {
			cell := step.Cell
			if cell == "" {
				cell = "(launch)"
			}
			fmt.Printf("  %8.3f ns  %-5s %-20s via %s\n", step.Arrival*1e9, step.Dir, step.Net, cell)
		}
		if res.Attribution != nil {
			ra := report.BuildAttribution(res.Attribution)
			if *attrFlag {
				fmt.Println()
				if err := ra.Render(os.Stdout); err != nil {
					return err
				}
			}
			if *attrJSON != "" {
				if err := writeFileWith(*attrJSON, ra.WriteJSON); err != nil {
					return err
				}
			}
			if obsSrv != nil {
				var buf strings.Builder
				if err := ra.Render(&buf); err != nil {
					return err
				}
				obsSrv.SetCritpath(buf.String(), ra)
			}
		}
		if *golden {
			g, err := d.GoldenPath(res.Path, xtalksta.GoldenConfig{Metrics: reg, Trace: tracer})
			if err != nil {
				return err
			}
			fmt.Printf("\ngolden simulation: %.3f ns aligned (%.3f ns quiet), %d aggressors, %d sims\n",
				g.Delay*1e9, g.QuietDelay*1e9, len(g.Aggressors), g.Sims)
			if *goldenVCD != "" {
				f, err := os.Create(*goldenVCD)
				if err != nil {
					return err
				}
				defer f.Close()
				var sigs []vcd.Signal
				for name, tr := range g.Traces {
					sigs = append(sigs, vcd.Signal{Name: name, Trace: tr})
				}
				if err := vcd.Write(f, "goldenpath", 1e-12, sigs); err != nil {
					return err
				}
				fmt.Printf("waveforms written to %s\n", *goldenVCD)
			}
		}
		return nil
	}

	paperTable := d.PaperTableOpts
	if *parallelModes {
		paperTable = d.PaperTableParallel
	}
	table, err := paperTable(title, *golden, aopts)
	if err != nil {
		return err
	}
	var sweep *sweepBenchResult
	if *sweepBench && *jsonPath != "" {
		sweep, err = runSweepBench(d, aopts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep bench: serial %.0f ms, parallel %.0f ms (%.2fx)\n",
			sweep.SerialMs, sweep.ParallelMs, sweep.Ratio)
	}
	if *jsonPath != "" {
		jsonScale := 0.0 // 0 = not a preset run; scale is preset-relative
		if *preset != "" {
			jsonScale = *scale
		}
		if err := writeTableJSON(*jsonPath, title, st, table, *workers, scheduler, jsonScale, compileMs, sweep, reg); err != nil {
			return err
		}
	}
	if *markdown {
		return table.Markdown(os.Stdout)
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	if v := table.CheckShape(0.05); len(v) > 0 {
		fmt.Println("\nWARNING: paper shape violated:")
		for _, s := range v {
			fmt.Println("  -", s)
		}
	}
	return nil
}

// runECO is the incremental replay flow: one full analysis establishes
// the baseline, then each edit batch is applied and re-analyzed with
// Design.Reanalyze, printing the dirty/reused line counts, the delay
// movement, and the wall time per revision. With -eco-verify every
// incremental result is additionally bit-compared against a
// from-scratch analysis of the edited design.
func runECO(d *xtalksta.Design, aopts xtalksta.AnalysisOptions, path string, random int, seed int64, perBatch int, verify bool) error {
	var batches [][]xtalksta.Edit
	if path != "" {
		b, err := incremental.LoadBatches(path)
		if err != nil {
			return err
		}
		batches = b
	}
	if random > 0 {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < random; i++ {
			if b := incremental.RandomBatch(d.Circuit, rng, perBatch); len(b) > 0 {
				batches = append(batches, b)
			}
		}
	}
	if len(batches) == 0 {
		return fmt.Errorf("no ECO batches to replay")
	}

	t0 := time.Now()
	res, err := d.Analyze(aopts)
	if err != nil {
		return err
	}
	fmt.Printf("baseline %s: longest %.4f ns, %d passes, %v (cache: %d entries)\n",
		res.Mode, res.LongestPath*1e9, res.Passes, time.Since(t0).Round(time.Millisecond),
		d.Calc.CacheEntries())

	for i, batch := range batches {
		for _, e := range batch {
			fmt.Printf("  rev %d: %s\n", d.Revision()+1, e)
		}
		t1 := time.Now()
		next, err := d.Reanalyze(res, batch)
		if err != nil {
			return err
		}
		wall := time.Since(t1)
		delta := (next.LongestPath - res.LongestPath) * 1e9
		if eco := next.ECO; eco != nil {
			total := eco.DirtyLines + eco.ReusedLines
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(eco.DirtyLines) / float64(total)
			}
			tag := ""
			if eco.FullFallback {
				tag = " [full fallback]"
			}
			fmt.Printf("batch %d/%d: longest %.4f ns (%+.4f ns), %d dirty / %d reused lines (%.1f%% re-evaluated), %d cone expansions, %v%s\n",
				i+1, len(batches), next.LongestPath*1e9, delta,
				eco.DirtyLines, eco.ReusedLines, pct, eco.ConeExpansions,
				wall.Round(time.Microsecond), tag)
		} else {
			fmt.Printf("batch %d/%d: longest %.4f ns (%+.4f ns), %v\n",
				i+1, len(batches), next.LongestPath*1e9, delta, wall.Round(time.Microsecond))
		}
		if verify {
			full, err := d.Analyze(aopts)
			if err != nil {
				return err
			}
			if math.Float64bits(full.LongestPath) != math.Float64bits(next.LongestPath) {
				return fmt.Errorf("batch %d: incremental longest path %.9g ns != from-scratch %.9g ns",
					i+1, next.LongestPath*1e9, full.LongestPath*1e9)
			}
			fmt.Printf("  verified: bit-identical to from-scratch run\n")
		}
		res = next
	}
	fmt.Printf("final: longest %.4f ns at revision %d (cache: %d entries)\n",
		res.LongestPath*1e9, d.Revision(), d.Calc.CacheEntries())
	return nil
}

// writeFileWith creates path and streams it through the given writer
// function.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchEnv identifies the environment a bench JSON was recorded in, so
// benchdiff can refuse-or-flag cross-environment comparisons. Scale
// and Cells pin the circuit size: benchdiff hard-fails when they
// differ between baseline and candidate, so cross-PR comparisons can't
// silently mix scales (Scale is 0 for non-preset runs).
type benchEnv struct {
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Workers     int     `json:"workers"`
	Scheduler   string  `json:"scheduler"`
	GitRevision string  `json:"git_revision"`
	Scale       float64 `json:"scale"`
	Cells       int     `json:"cells"`
}

// gitRevision resolves the source revision: the build info's VCS stamp
// when present (release builds), a git query as fallback (go run from a
// checkout embeds no stamp), else "unknown".
func gitRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return s.Value[:12]
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

// sweepBenchResult is the -sweep-bench wall-clock comparison of the
// five-mode sweep: serial (AnalyzeAll, cache cleared per mode — the
// paper-table convention) vs concurrent (AnalyzeAllParallel, one
// session per mode over the shared snapshot and one shared cache).
type sweepBenchResult struct {
	SerialMs   float64 `json:"analyzeall_serial_ms"`
	ParallelMs float64 `json:"analyzeall_parallel_ms"`
	Ratio      float64 `json:"parallel_over_serial"`
}

// runSweepBench times both sweeps from a cold characterization cache.
// Delays are bit-identical between the two (DESIGN.md §11), so only
// the wall-clocks are recorded.
func runSweepBench(d *xtalksta.Design, aopts xtalksta.AnalysisOptions) (*sweepBenchResult, error) {
	d.Calc.ClearCache()
	t0 := time.Now()
	if _, err := d.AnalyzeAllOpts(aopts); err != nil {
		return nil, err
	}
	serial := time.Since(t0)
	d.Calc.ClearCache()
	t1 := time.Now()
	if _, err := d.AnalyzeAllParallel(aopts); err != nil {
		return nil, err
	}
	parallel := time.Since(t1)
	return &sweepBenchResult{
		SerialMs:   float64(serial) / 1e6,
		ParallelMs: float64(parallel) / 1e6,
		Ratio:      float64(parallel) / float64(serial),
	}, nil
}

// histQuantiles returns the requested quantiles of one histogram
// family, merged across its labeled series; ok is false when the
// family is absent or empty (then no percentile block is emitted).
func histQuantiles(reg *xtalksta.MetricsRegistry, name string, qs ...float64) ([]float64, bool) {
	if reg == nil {
		return nil, false
	}
	for _, fam := range reg.Gather() {
		if fam.Name != name || fam.Kind != "histogram" {
			continue
		}
		d := fam.Merged()
		if d.Count == 0 {
			return nil, false
		}
		out := make([]float64, len(qs))
		for i, q := range qs {
			out[i] = d.Quantile(q)
		}
		return out, true
	}
	return nil, false
}

// printLatencySummary prints the session's latency percentiles (-v):
// whole-analysis wall time and per-arc-evaluation time.
func printLatencySummary(w io.Writer, reg *xtalksta.MetricsRegistry) {
	if qs, ok := histQuantiles(reg, obs.MAnalysisDuration, 0.50, 0.90, 0.99); ok {
		fmt.Fprintf(w, "latency: analysis p50 %.1f ms, p90 %.1f ms, p99 %.1f ms\n",
			qs[0]*1e3, qs[1]*1e3, qs[2]*1e3)
	}
	if qs, ok := histQuantiles(reg, obs.MArcEvalDuration, 0.50, 0.99); ok {
		fmt.Fprintf(w, "latency: arc eval p50 %.1f µs, p99 %.1f µs\n",
			qs[0]*1e6, qs[1]*1e6)
	}
}

// latencyBlock is the percentile section of the -json summary, read
// from the shared metrics registry (bucket-interpolated quantiles).
type latencyBlock struct {
	AnalysisP50Ms float64 `json:"analysis_p50_ms"`
	AnalysisP90Ms float64 `json:"analysis_p90_ms"`
	AnalysisP99Ms float64 `json:"analysis_p99_ms"`
	ArcEvalP50Us  float64 `json:"arc_eval_p50_us"`
	ArcEvalP99Us  float64 `json:"arc_eval_p99_us"`
}

func buildLatencyBlock(reg *xtalksta.MetricsRegistry) *latencyBlock {
	aq, ok := histQuantiles(reg, obs.MAnalysisDuration, 0.50, 0.90, 0.99)
	if !ok {
		return nil
	}
	lb := &latencyBlock{
		AnalysisP50Ms: aq[0] * 1e3,
		AnalysisP90Ms: aq[1] * 1e3,
		AnalysisP99Ms: aq[2] * 1e3,
	}
	if eq, ok := histQuantiles(reg, obs.MArcEvalDuration, 0.50, 0.99); ok {
		lb.ArcEvalP50Us = eq[0] * 1e6
		lb.ArcEvalP99Us = eq[1] * 1e6
	}
	return lb
}

// maxRSSBytes reads the process's peak resident set size. Getrusage
// reports Maxrss in KiB on Linux; 0 means the platform gave nothing.
func maxRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss * 1024
}

// writeTableJSON emits the machine-readable all-modes summary (-json).
func writeTableJSON(path, title string, st netlist.Stats, table *xtalksta.Table, workers int, sched xtalksta.Scheduler, scale, compileMs float64, sweep *sweepBenchResult, reg *xtalksta.MetricsRegistry) error {
	type row struct {
		Method      string  `json:"method"`
		DelayNs     float64 `json:"delay_ns"`
		RuntimeMs   float64 `json:"runtime_ms"`
		Passes      int     `json:"passes"`
		Evaluations int64   `json:"arc_evaluations"`
		Tier0Evals  int64   `json:"tier0_evals"`
		NewtonEvals int64   `json:"newton_evals"`
	}
	out := struct {
		Circuit string   `json:"circuit"`
		Cells   int      `json:"cells"`
		DFFs    int      `json:"dffs"`
		Nets    int      `json:"nets"`
		Depth   int      `json:"logic_depth"`
		Env     benchEnv `json:"env"`
		// CompileMs is the design-build wall time (generate + place +
		// route + extract); MaxRSSBytes the process's peak resident
		// set at write time. Both are gated by benchdiff -mem-tol.
		CompileMs   float64           `json:"compile_ms"`
		MaxRSSBytes int64             `json:"max_rss_bytes"`
		Rows        []row             `json:"rows"`
		GoldenNs    float64           `json:"golden_ns,omitempty"`
		Sweep       *sweepBenchResult `json:"sweep,omitempty"`
		Latency     *latencyBlock     `json:"latency,omitempty"`
	}{Circuit: title, Cells: st.Cells, DFFs: st.DFFs, Nets: st.Nets,
		Depth: st.LogicDepth, GoldenNs: table.GoldenNs, Sweep: sweep,
		CompileMs: compileMs, MaxRSSBytes: maxRSSBytes(),
		Latency: buildLatencyBlock(reg),
		Env: benchEnv{
			GoVersion:   runtime.Version(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Workers:     workers,
			Scheduler:   sched.String(),
			GitRevision: gitRevision(),
			Scale:       scale,
			Cells:       st.Cells,
		}}
	for _, r := range table.Rows {
		out.Rows = append(out.Rows, row{
			Method:      r.Method,
			DelayNs:     r.DelayNs,
			RuntimeMs:   float64(r.Runtime) / 1e6,
			Passes:      r.Passes,
			Evaluations: r.Evaluations,
			Tier0Evals:  r.Tier0Evals,
			NewtonEvals: r.NewtonEvals,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildDesign(benchPath, spefPath, preset string, scale float64, cells, dffs, depth int, seed int64, bopts xtalksta.BuildOptions) (*xtalksta.Design, string, error) {
	switch {
	case benchPath != "":
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		if spefPath != "" {
			sf, err := os.Open(spefPath)
			if err != nil {
				return nil, "", err
			}
			defer sf.Close()
			d, err := xtalksta.FromBenchAndSPEF(benchPath, f, sf, bopts)
			return d, benchPath, err
		}
		d, err := xtalksta.FromBench(benchPath, f, bopts)
		return d, benchPath, err
	case preset != "":
		p := xtalksta.Preset(strings.ToLower(preset))
		d, err := xtalksta.GeneratePreset(p, scale, bopts)
		title := fmt.Sprintf("%s (scale %.2f)", preset, scale)
		return d, title, err
	case cells > 0:
		if dffs <= 0 {
			dffs = cells / 10
		}
		d, err := xtalksta.Generate(circuitgen.Params{
			Seed: seed, Cells: cells, DFFs: dffs, Depth: depth, ClockFanout: 8,
		}, bopts)
		title := fmt.Sprintf("synthetic %d cells (seed %d)", cells, seed)
		return d, title, err
	default:
		return nil, "", fmt.Errorf("one of -bench, -preset or -cells is required")
	}
}

func parseMode(s string) (xtalksta.Mode, error) {
	switch strings.ToLower(s) {
	case "best", "bestcase":
		return xtalksta.BestCase, nil
	case "doubled", "static", "staticdoubled":
		return xtalksta.StaticDoubled, nil
	case "worst", "worstcase":
		return xtalksta.WorstCase, nil
	case "onestep", "one-step", "one":
		return xtalksta.OneStep, nil
	case "iterative", "iter":
		return xtalksta.Iterative, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func parseSched(s string) (xtalksta.Scheduler, error) {
	switch strings.ToLower(s) {
	case "dataflow", "wavefront":
		return xtalksta.SchedDataflow, nil
	case "levels", "level":
		return xtalksta.SchedLevels, nil
	}
	return 0, fmt.Errorf("unknown scheduler %q (want dataflow or levels)", s)
}
