// Command xtalksta runs the crosstalk-aware static timing analyses on a
// circuit and prints the paper-style result table.
//
// Usage:
//
//	xtalksta -preset s35932 -scale 0.05 -golden
//	xtalksta -bench design.bench -mode iterative
//	xtalksta -cells 2000 -dffs 150 -depth 14 -seed 7
//
// With -mode, a single analysis runs and the critical path is printed;
// without it, all five analyses run and the table is rendered.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xtalksta"
	"xtalksta/internal/circuitgen"
	"xtalksta/internal/vcd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xtalksta:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		benchPath = flag.String("bench", "", "ISCAS89 .bench netlist to analyze")
		spefPath  = flag.String("spef", "", "parasitics file for -bench (skips place & route)")
		preset    = flag.String("preset", "", "paper benchmark preset: s35932, s38417 or s38584")
		scale     = flag.Float64("scale", 1.0, "preset size scale in (0,1]")
		cells     = flag.Int("cells", 0, "generate a synthetic circuit with this many cells")
		dffs      = flag.Int("dffs", 0, "flip-flop count for -cells")
		depth     = flag.Int("depth", 12, "logic depth for -cells")
		seed      = flag.Int64("seed", 1, "generator seed for -cells")
		mode      = flag.String("mode", "", "single analysis: best, doubled, worst, onestep, iterative")
		esperance = flag.Bool("esperance", false, "enable the Esperance speedup (iterative mode)")
		golden    = flag.Bool("golden", false, "validate the longest path with the golden simulator")
		markdown  = flag.Bool("markdown", false, "emit the table as markdown")
		clock     = flag.Float64("clock", 0, "clock period in ns: print a per-endpoint slack report")
		topk      = flag.Int("topk", 10, "endpoints/nets to list in reports")
		noiseFlag = flag.Bool("noise", false, "print the crosstalk glitch (functional noise) report")
		fix       = flag.Bool("fix", false, "run the gate-sizing optimizer against -clock (requires -mode and -clock)")
		goldenVCD = flag.String("goldenvcd", "", "with -golden: dump the aligned path waveforms to this VCD file")
	)
	flag.Parse()

	d, title, err := buildDesign(*benchPath, *spefPath, *preset, *scale, *cells, *dffs, *depth, *seed)
	if err != nil {
		return err
	}
	st, err := d.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("circuit: %s — %d cells (%d DFFs), %d nets, depth %d\n\n",
		title, st.Cells, st.DFFs, st.Nets, st.LogicDepth)

	if *noiseFlag {
		rep, err := d.AnalyzeNoise()
		if err != nil {
			return err
		}
		if err := rep.Render(os.Stdout, *topk); err != nil {
			return err
		}
		fmt.Println()
	}

	if *mode != "" {
		m, err := parseMode(*mode)
		if err != nil {
			return err
		}
		if *fix {
			if *clock <= 0 {
				return fmt.Errorf("-fix requires -clock")
			}
			res, err := d.FixTiming(xtalksta.AnalysisOptions{Mode: m}, *clock*1e-9, xtalksta.SizingConfig{})
			if err != nil {
				return err
			}
			fmt.Printf("sizing: %.3f ns -> %.3f ns against %.3f ns target (met=%v, %d moves, %d iterations)\n",
				res.Before*1e9, res.After*1e9, *clock, res.Met, len(res.Moves), res.Iterations)
			for i, mv := range res.Moves {
				if i >= *topk {
					fmt.Printf("  ... %d more moves\n", len(res.Moves)-i)
					break
				}
				fmt.Printf("  upsize %-12s -> %.2fx\n", mv.Cell, mv.NewSize)
			}
			return nil
		}
		if *clock > 0 {
			rep, err := d.Report(xtalksta.AnalysisOptions{Mode: m, Esperance: *esperance}, *clock*1e-9)
			if err != nil {
				return err
			}
			return rep.Render(os.Stdout, *topk)
		}
		res, err := d.Analyze(xtalksta.AnalysisOptions{Mode: m, Esperance: *esperance})
		if err != nil {
			return err
		}
		fmt.Printf("%s: longest path %.3f ns (endpoint %s %s, %d passes, %v, %d arc evals)\n",
			res.Mode, res.LongestPath*1e9, res.Endpoint.Net, res.Endpoint.Kind,
			res.Passes, res.Runtime.Round(1e6), res.ArcEvaluations)
		fmt.Println("\ncritical path:")
		for _, step := range res.Path {
			cell := step.Cell
			if cell == "" {
				cell = "(launch)"
			}
			fmt.Printf("  %8.3f ns  %-5s %-20s via %s\n", step.Arrival*1e9, step.Dir, step.Net, cell)
		}
		if *golden {
			g, err := d.GoldenPath(res.Path, xtalksta.GoldenConfig{})
			if err != nil {
				return err
			}
			fmt.Printf("\ngolden simulation: %.3f ns aligned (%.3f ns quiet), %d aggressors, %d sims\n",
				g.Delay*1e9, g.QuietDelay*1e9, len(g.Aggressors), g.Sims)
			if *goldenVCD != "" {
				f, err := os.Create(*goldenVCD)
				if err != nil {
					return err
				}
				defer f.Close()
				var sigs []vcd.Signal
				for name, tr := range g.Traces {
					sigs = append(sigs, vcd.Signal{Name: name, Trace: tr})
				}
				if err := vcd.Write(f, "goldenpath", 1e-12, sigs); err != nil {
					return err
				}
				fmt.Printf("waveforms written to %s\n", *goldenVCD)
			}
		}
		return nil
	}

	table, err := d.PaperTable(title, *golden)
	if err != nil {
		return err
	}
	if *markdown {
		return table.Markdown(os.Stdout)
	}
	if err := table.Render(os.Stdout); err != nil {
		return err
	}
	if v := table.CheckShape(0.05); len(v) > 0 {
		fmt.Println("\nWARNING: paper shape violated:")
		for _, s := range v {
			fmt.Println("  -", s)
		}
	}
	return nil
}

func buildDesign(benchPath, spefPath, preset string, scale float64, cells, dffs, depth int, seed int64) (*xtalksta.Design, string, error) {
	switch {
	case benchPath != "":
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		if spefPath != "" {
			sf, err := os.Open(spefPath)
			if err != nil {
				return nil, "", err
			}
			defer sf.Close()
			d, err := xtalksta.FromBenchAndSPEF(benchPath, f, sf, xtalksta.Defaults())
			return d, benchPath, err
		}
		d, err := xtalksta.FromBench(benchPath, f, xtalksta.Defaults())
		return d, benchPath, err
	case preset != "":
		p := xtalksta.Preset(strings.ToLower(preset))
		d, err := xtalksta.GeneratePreset(p, scale, xtalksta.Defaults())
		title := fmt.Sprintf("%s (scale %.2f)", preset, scale)
		return d, title, err
	case cells > 0:
		if dffs <= 0 {
			dffs = cells / 10
		}
		d, err := xtalksta.Generate(circuitgen.Params{
			Seed: seed, Cells: cells, DFFs: dffs, Depth: depth, ClockFanout: 8,
		}, xtalksta.Defaults())
		title := fmt.Sprintf("synthetic %d cells (seed %d)", cells, seed)
		return d, title, err
	default:
		return nil, "", fmt.Errorf("one of -bench, -preset or -cells is required")
	}
}

func parseMode(s string) (xtalksta.Mode, error) {
	switch strings.ToLower(s) {
	case "best", "bestcase":
		return xtalksta.BestCase, nil
	case "doubled", "static", "staticdoubled":
		return xtalksta.StaticDoubled, nil
	case "worst", "worstcase":
		return xtalksta.WorstCase, nil
	case "onestep", "one-step", "one":
		return xtalksta.OneStep, nil
	case "iterative", "iter":
		return xtalksta.Iterative, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}
