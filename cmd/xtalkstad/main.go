// Command xtalkstad is the timing-as-a-service daemon: a long-running
// HTTP server holding a registry of compiled designs and answering
// crosstalk-aware timing queries, with admission control (bounded
// in-flight analyses + a deadline-aware queue; overload sheds with
// 429/503) and single-flight coalescing of identical
// (revision, mode, corner) queries.
//
// Usage:
//
//	xtalkstad -addr :8080 -preset s35932 -scale 0.02
//	xtalkstad -addr 127.0.0.1:0 -cells 400 -max-inflight 2 -max-queue 32
//
// The preloaded design registers under -id (default "main"); further
// designs load at runtime with POST /v1/designs. The same mux serves
// the introspection plane: /metrics, /debug/pprof/* and /debug/obs/*.
// SIGINT/SIGTERM drain gracefully: the listener closes immediately,
// in-flight analyses finish, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xtalksta"
	"xtalksta/internal/circuitgen"
	"xtalksta/internal/obs"
	"xtalksta/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xtalkstad:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		id   = flag.String("id", "main", "registry id of the preloaded design")

		preset = flag.String("preset", "", "preload a paper benchmark preset: s35932, s38417 or s38584")
		scale  = flag.Float64("scale", 0.02, "preset size scale in (0,1]")
		cells  = flag.Int("cells", 0, "preload a synthetic circuit with this many cells")
		dffs   = flag.Int("dffs", 0, "flip-flop count for -cells (default cells/10)")
		depth  = flag.Int("depth", 12, "logic depth for -cells")
		seed   = flag.Int64("seed", 1, "generator seed for -cells")

		maxInFlight  = flag.Int("max-inflight", 0, "concurrently running requests (0 = default 4)")
		maxQueue     = flag.Int("max-queue", 0, "requests waiting for a slot before 429s (0 = default 64)")
		queueTimeout = flag.Duration("queue-timeout", 0, "max wait for a slot before a 503 (0 = default 5s)")
		workers      = flag.Int("workers", 0, "worker goroutines per analysis sweep (0/1 = sequential)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	srv := server.New(server.Config{
		Registry:     reg,
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		QueueTimeout: *queueTimeout,
		Workers:      *workers,
	})

	if *preset != "" || *cells > 0 {
		d, title, err := buildDesign(*preset, *scale, *cells, *dffs, *depth, *seed, reg)
		if err != nil {
			return err
		}
		if err := srv.Register(*id, title, d); err != nil {
			return err
		}
		st, err := d.Stats()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "xtalkstad: design %q: %s — %d cells (%d DFFs), %d nets, depth %d\n",
			*id, title, st.Cells, st.DFFs, st.Nets, st.LogicDepth)
	}

	if err := srv.Start(*addr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xtalkstad: serving on http://%s\n", srv.Addr())

	// Block until SIGINT/SIGTERM, then drain: no new connections,
	// running analyses finish (bounded by -drain-timeout), exit clean.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	fmt.Fprintf(os.Stderr, "xtalkstad: %v: draining (up to %v)\n", sig, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Fprintln(os.Stderr, "xtalkstad: drained, bye")
	return nil
}

func buildDesign(preset string, scale float64, cells, dffs, depth int, seed int64, reg *obs.Registry) (*xtalksta.Design, string, error) {
	bopts := xtalksta.Defaults()
	bopts.Layout.Metrics = reg
	bopts.Calc.Metrics = reg
	switch {
	case preset != "":
		d, err := xtalksta.GeneratePreset(xtalksta.Preset(strings.ToLower(preset)), scale, bopts)
		return d, fmt.Sprintf("%s (scale %.2f)", preset, scale), err
	case cells > 0:
		if dffs <= 0 {
			dffs = cells / 10
		}
		d, err := xtalksta.Generate(circuitgen.Params{
			Seed: seed, Cells: cells, DFFs: dffs, Depth: depth, ClockFanout: 8,
		}, bopts)
		return d, fmt.Sprintf("synthetic %d cells (seed %d)", cells, seed), err
	}
	return nil, "", fmt.Errorf("one of -preset or -cells is required to preload")
}
