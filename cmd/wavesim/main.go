// Command wavesim demonstrates the transient engine on the paper's
// Fig. 1 situation: two coupled inverters, a victim transition with and
// without an opposite-switching aggressor. It prints the victim
// waveform samples and the measured delays as tab-separated values —
// the data behind the figure.
//
// Usage:
//
//	wavesim                 # default Fig. 1 sweep
//	wavesim -cc 80 -align   # 80 fF coupling cap, sweep aggressor alignment
package main

import (
	"flag"
	"fmt"
	"os"

	"xtalksta/internal/device"
	"xtalksta/internal/figone"
	"xtalksta/internal/spice"
	"xtalksta/internal/vcd"
)

func main() {
	var (
		ccFF    = flag.Float64("cc", 60, "coupling capacitance in fF")
		cgFF    = flag.Float64("cg", 60, "victim ground load in fF")
		align   = flag.Bool("align", false, "sweep aggressor alignment instead of printing waveforms")
		samples = flag.Int("samples", 120, "waveform samples to print")
		vcdOut  = flag.String("vcd", "", "also dump the waveforms as a VCD file")
	)
	flag.Parse()

	p := device.Generic05um()
	lib := device.NewLibrary(p, 0)
	if *align {
		sweep, err := figone.AlignmentSweep(lib, *ccFF*1e-15, *cgFF*1e-15, 21)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wavesim:", err)
			os.Exit(1)
		}
		fmt.Println("# aggressor_switch_ns\tvictim_delay_ns")
		for _, pt := range sweep {
			fmt.Printf("%.4f\t%.4f\n", pt.AggressorTime*1e9, pt.VictimDelay*1e9)
		}
		return
	}

	fig, err := figone.Waveforms(lib, *ccFF*1e-15, *cgFF*1e-15, *samples)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wavesim:", err)
		os.Exit(1)
	}
	if *vcdOut != "" {
		f, err := os.Create(*vcdOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wavesim:", err)
			os.Exit(1)
		}
		defer f.Close()
		sig := func(name string, v []float64) vcd.Signal {
			return vcd.Signal{Name: name, Trace: &spice.Trace{T: fig.Time, V: v}}
		}
		if err := vcd.Write(f, "fig1", 1e-12, []vcd.Signal{
			sig("victim_quiet", fig.VictimQuiet),
			sig("victim_coupled", fig.VictimCoupled),
			sig("aggressor", fig.Aggressor),
		}); err != nil {
			fmt.Fprintln(os.Stderr, "wavesim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("# victim delay: quiet %.4f ns, coupled %.4f ns (pushout %.4f ns)\n",
		fig.QuietDelay*1e9, fig.CoupledDelay*1e9, (fig.CoupledDelay-fig.QuietDelay)*1e9)
	fmt.Println("# t_ns\tvictim_quiet_V\tvictim_coupled_V\taggressor_V")
	for i := range fig.Time {
		fmt.Printf("%.4f\t%.4f\t%.4f\t%.4f\n",
			fig.Time[i]*1e9, fig.VictimQuiet[i], fig.VictimCoupled[i], fig.Aggressor[i])
	}
}
