// Command xtalklib characterizes the transistor-level cell library into
// a Liberty-flavored lookup-table file, and verifies a library file
// against fresh circuit-level simulations.
//
//	xtalklib -o lib05um.lib                  # characterize with defaults
//	xtalklib -o lib.lib -dense               # denser grid (slower, tighter)
//	xtalklib -check lib.lib                  # verify a library file
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"xtalksta/internal/ccc"
	"xtalksta/internal/coupling"
	"xtalksta/internal/delaycalc"
	"xtalksta/internal/device"
	"xtalksta/internal/liberty"
	"xtalksta/internal/netlist"
	"xtalksta/internal/waveform"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xtalklib:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out   = flag.String("o", "", "write the characterized library to this file")
		check = flag.String("check", "", "read a library file and verify it against fresh simulations")
		dense = flag.Bool("dense", false, "use a denser characterization grid")
	)
	flag.Parse()

	p := device.Generic05um()
	devlib := device.NewLibrary(p, 0)
	model, err := coupling.NewModel(p.VDD, p.VthModel)
	if err != nil {
		return err
	}
	calc := delaycalc.New(devlib, ccc.DefaultSizing(p), model, delaycalc.Options{})

	cfg := liberty.Config{}
	if *dense {
		cfg.Slews = []float64{30e-12, 80e-12, 180e-12, 400e-12, 800e-12, 1.6e-9, 3e-9}
		cfg.Loads = []float64{3e-15, 10e-15, 25e-15, 60e-15, 140e-15, 320e-15, 700e-15, 1.5e-12}
		cfg.Ratios = []float64{0, 0.2, 0.4, 0.6, 0.8}
	}

	switch {
	case *out != "":
		lib, err := liberty.Characterize("xtalksta_05um", calc, cfg)
		if err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := lib.Write(f); err != nil {
			return err
		}
		_, sims := calc.Stats()
		fmt.Printf("characterized %d arc classes with %d simulations -> %s\n",
			len(lib.Classes()), sims, *out)
		return nil

	case *check != "":
		// A throwaway characterization supplies process/sizing metadata.
		ref, err := liberty.Characterize("ref", calc, liberty.Config{
			Slews: []float64{1e-10, 1e-9}, Loads: []float64{1e-14, 1e-13},
			Ratios: []float64{0, 0.5}, MaxNIn: 2,
		})
		if err != nil {
			return err
		}
		f, err := os.Open(*check)
		if err != nil {
			return err
		}
		defer f.Close()
		lib, err := liberty.Parse(f, ref)
		if err != nil {
			return err
		}
		fmt.Printf("library %q: %d arc classes\n", lib.Name, len(lib.Classes()))
		worst := 0.0
		n := 0
		for _, req := range []delaycalc.Request{
			{Kind: netlist.INV, NIn: 1, Pin: 0, Dir: waveform.Rising, InSlew: 0.3e-9, CLoad: 50e-15},
			{Kind: netlist.NAND, NIn: 2, Pin: 1, Dir: waveform.Falling, InSlew: 0.2e-9, CLoad: 35e-15, CCouple: 20e-15},
			{Kind: netlist.NOR, NIn: 3, Pin: 0, Dir: waveform.Rising, InSlew: 0.6e-9, CLoad: 120e-15},
		} {
			want, err := calc.Eval(req)
			if err != nil {
				return err
			}
			got, err := lib.Eval(req)
			if err != nil {
				fmt.Printf("  %s%d/%d %s: not covered (%v)\n", req.Kind, req.NIn, req.Pin, req.Dir, err)
				continue
			}
			rel := math.Abs(got.Delay-want.Delay) / want.Delay
			fmt.Printf("  %s%d/%d %s: LUT %.4g ns vs circuit %.4g ns (%.1f%%)\n",
				req.Kind, req.NIn, req.Pin, req.Dir, got.Delay*1e9, want.Delay*1e9, rel*100)
			if rel > worst {
				worst = rel
			}
			n++
		}
		fmt.Printf("worst deviation over %d spot checks: %.1f%%\n", n, worst*100)
		return nil
	}
	return fmt.Errorf("one of -o or -check is required")
}
