// Command benchgen generates synthetic ISCAS89-class sequential
// circuits (the reproduction's stand-in for the paper's benchmark
// netlists) and writes them in `.bench` format, optionally with a
// parasitics summary from the layout extractor.
//
// Usage:
//
//	benchgen -preset s38417 -scale 0.1 -o s38417_small.bench
//	benchgen -cells 5000 -dffs 400 -depth 20 -seed 3 -o synth.bench -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"xtalksta/internal/ccc"
	"xtalksta/internal/circuitgen"
	"xtalksta/internal/device"
	"xtalksta/internal/layout"
	"xtalksta/internal/netlist"
	"xtalksta/internal/spef"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		preset  = flag.String("preset", "", "paper preset: s35932, s38417, s38584")
		scale   = flag.Float64("scale", 1.0, "preset size scale in (0,1]")
		cells   = flag.Int("cells", 0, "synthetic circuit cell count")
		dffs    = flag.Int("dffs", 0, "flip-flop count")
		depth   = flag.Int("depth", 12, "logic depth")
		pis     = flag.Int("pis", 16, "primary inputs")
		pos     = flag.Int("pos", 16, "primary outputs")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output .bench file (default stdout)")
		spefOut = flag.String("spef", "", "also place/route/extract and write parasitics to this file (the .bench output is then the lowered netlist)")
		stats   = flag.Bool("stats", false, "also print layout and extraction statistics")
	)
	flag.Parse()

	var c *netlist.Circuit
	var err error
	switch {
	case *preset != "":
		c, err = circuitgen.GeneratePreset(circuitgen.Preset(strings.ToLower(*preset)), *scale)
	case *cells > 0:
		if *dffs <= 0 {
			*dffs = *cells / 10
		}
		c, err = circuitgen.Generate(circuitgen.Params{
			Seed: *seed, Cells: *cells, DFFs: *dffs, PIs: *pis, POs: *pos,
			Depth: *depth, ClockFanout: 8,
		})
	default:
		return fmt.Errorf("one of -preset or -cells is required")
	}
	if err != nil {
		return err
	}

	var l *layout.Layout
	if *spefOut != "" || *stats {
		// Lower before writing so the .bench names match the SPEF.
		if err := netlist.Lower(c); err != nil {
			return err
		}
		p := device.Generic05um()
		siz := ccc.DefaultSizing(p)
		l, err = layout.Build(c, layout.Options{})
		if err != nil {
			return err
		}
		if err := l.Extract(p, ccc.PinCapFunc(c, p, siz), 30e-15); err != nil {
			return err
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := netlist.WriteBench(w, c); err != nil {
		return err
	}
	if *spefOut != "" {
		f, err := os.Create(*spefOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := spef.Write(f, c); err != nil {
			return err
		}
	}

	if *stats {
		total, max := l.WirelengthStats()
		st, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lowered cells: %d, nets: %d, depth: %d\n", st.Cells, st.Nets, st.LogicDepth)
		fmt.Fprintf(os.Stderr, "die: %.0f x %.0f um, wirelength total %.2f mm, max net %.0f um\n",
			l.DieW*1e6, l.DieH*1e6, total*1e3, max*1e6)
		var ccs []float64
		nWithCc := 0
		totCc, totCg := 0.0, 0.0
		for _, n := range c.Nets {
			if cc := n.Par.TotalCoupling(); cc > 0 {
				nWithCc++
				ccs = append(ccs, cc)
				totCc += cc
			}
			totCg += n.Par.CWire
		}
		sort.Float64s(ccs)
		med := 0.0
		if len(ccs) > 0 {
			med = ccs[len(ccs)/2]
		}
		fmt.Fprintf(os.Stderr, "coupling: %d/%d nets, median Cc %.2f fF, ΣCc/(ΣCc+ΣCg) = %.1f%%\n",
			nWithCc, len(c.Nets), med*1e15, 100*totCc/(totCc+totCg))
	}
	return nil
}
