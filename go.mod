module xtalksta

go 1.22
